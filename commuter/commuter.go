// Package commuter is the public API of the COMMUTER toolchain (§5 of "The
// Scalable Commutativity Rule", SOSP 2013): ANALYZER computes the
// conditions under which modeled POSIX operations commute, TESTGEN turns
// those conditions into concrete test cases with conflict coverage, and the
// MTRACE-style checker decides whether a kernel implementation is
// conflict-free — and hence scalable on MESI-like hardware — for each test.
//
// The pipeline lives behind the Client interface, which has two
// interchangeable bindings: Local() runs it in-process, Dial(url) runs it
// on a `commuter serve` instance over a versioned JSON protocol. The
// typical pipeline:
//
//	cli := commuter.Local() // or commuter.Dial("http://sweephost:8372")
//	analysis, err := cli.Analyze(ctx, "rename", "rename")
//	ts, err := cli.GenerateTests(ctx, "rename", "rename")
//	sum, err := cli.Check(ctx, "sv6", ts.Tests)
//	fmt.Println(sum.Conflicts, "of", sum.Total, "tests conflicted")
//
// Sweeps stream per-pair results as they finish:
//
//	for upd, err := range cli.SweepStream(ctx, commuter.WithOpSet("fs")) {
//		...
//	}
//
// The top-level functions (Analyze, GenerateTests, Ops, Sweep, ...) are
// the v1 API: in-process only, no contexts, panicking on unknown names.
// They are retained as thin shims for compatibility and deprecated in
// favor of the Client methods.
//
// Package commuter also exposes the evaluation drivers that regenerate the
// paper's Figure 6 matrices and Figure 7 throughput curves.
package commuter

import (
	"io"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
	"repro/internal/model"
	_ "repro/internal/kvspec"    // registers the "kv" spec
	_ "repro/internal/queuespec" // registers the "queue" spec
	_ "repro/internal/vmspec"    // registers the "vm" spec
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// PairResult holds the per-path commutativity analysis of one pair.
	PairResult = analyzer.PairResult
	// PairPath is one joint symbolic path with its commute condition.
	PairPath = analyzer.PairPath
	// Options tunes ANALYZER.
	Options = analyzer.Options
	// GenOptions tunes TESTGEN.
	GenOptions = testgen.Options
	// TestCase is one concrete commutative test.
	TestCase = kernel.TestCase
	// Setup is a test case's concrete initial state.
	Setup = kernel.Setup
	// Call is one concrete system call.
	Call = kernel.Call
	// Result is a system call result.
	Result = kernel.Result
	// CheckResult is the MTRACE verdict for one test on one kernel.
	CheckResult = kernel.CheckResult
	// Kernel is the system-call surface both implementations provide.
	Kernel = kernel.Kernel
	// ModelConfig selects specification variants (e.g. the lowest-FD rule).
	ModelConfig = model.Config
	// Curve is a Figure 7 throughput series.
	Curve = eval.Curve
	// Matrix is a Figure 6 conflict matrix.
	Matrix = eval.Matrix
	// OpDef is one modeled operation of a spec.
	OpDef = model.OpDef
	// Spec is one pluggable interface specification (see internal/spec).
	Spec = spec.Spec

	// SweepConfig describes one parallel pipeline sweep.
	SweepConfig = sweep.Config
	// SweepResult is a completed sweep.
	SweepResult = sweep.Result
	// SweepPair is the sweep outcome for one operation pair.
	SweepPair = sweep.PairResult
	// PhaseTimes is a pair's per-phase wall-time breakdown.
	PhaseTimes = sweep.PhaseTimes
	// SolverCounters is a pair's symbolic-solver work counters.
	SolverCounters = sweep.SolverCounters
	// SweepEvent is one streaming sweep progress report.
	SweepEvent = sweep.Event
	// SweepBackend is the pluggable two-tier sweep cache interface
	// (generated tests in a kernel-independent TESTGEN tier, per-kernel
	// cells in a CHECK tier); open one with OpenSweepBackend or compose
	// the sweep package's constructors directly.
	SweepBackend = sweep.Backend
	// SweepCache is the on-disk SweepBackend implementation.
	SweepCache = sweep.Cache
	// SweepCacheStats counts per-tier cache hits and misses.
	SweepCacheStats = sweep.CacheStats
	// KernelSpec names a kernel implementation for a sweep.
	KernelSpec = sweep.KernelSpec
)

// Specs returns the names of the registered interface specifications
// ("posix", "queue", plus any the embedding program registered).
func Specs() []string { return spec.Names() }

// LookupSpec resolves a registered spec by name; unknown names error with
// the registered specs listed.
func LookupSpec(name string) (Spec, error) { return spec.Lookup(name) }

// OpNames returns the 18 modeled POSIX operations in Figure 6 order.
func OpNames() []string { return spec.OpNames(model.Spec) }

// Ops resolves operation names against the default posix spec, for
// building a SweepConfig universe. With no arguments it returns all 18
// modeled operations in Figure 6 order; an unknown name panics (with the
// known ops listed) like Analyze.
//
// Deprecated: use Client.Sweep with WithOps, which resolves names inside
// any spec and returns an error instead of panicking.
func Ops(names ...string) []*OpDef {
	if len(names) == 0 {
		return model.Ops()
	}
	out := make([]*OpDef, len(names))
	for i, n := range names {
		op, err := spec.OpByName(model.Spec, n)
		if err != nil {
			panic("commuter: " + err.Error())
		}
		out[i] = op
	}
	return out
}

// Sweep fans the ANALYZE → TESTGEN → CHECK pipeline across cfg.Workers
// goroutines, one unordered operation pair at a time, optionally serving
// repeat pairs from cfg.Cache. See package sweep for the engine.
//
// Deprecated: use Client.Sweep (or Client.SweepStream), which is
// cancellable, works against a remote server, and selects its universe
// with options instead of a config struct.
func Sweep(cfg SweepConfig) (*SweepResult, error) { return sweep.Run(cfg) }

// OpenSweepCache opens (creating if needed) an on-disk sweep result cache.
//
// Deprecated: pass WithCache(dir) to Client.Sweep; the engine opens the
// cache itself.
func OpenSweepCache(dir string) (*SweepCache, error) { return sweep.OpenCache(dir) }

// OpenSweepBackend opens a sweep cache backend from its string spec: a
// directory path (or "dir:PATH"), "mem[:N]" for a bounded in-memory LRU,
// an http(s) URL naming a peer `commuter serve` instance's shared cache,
// or a comma list layering tiers fastest-first ("mem:,http://peer").
// Pass the result to Client.Sweep via WithCacheBackend, or to
// NewServerHandler via ServeWithBackend.
func OpenSweepBackend(spec string) (SweepBackend, error) { return sweep.OpenBackend(spec) }

// SweepKernels builds posix kernel specs by name ("linux", "sv6"); with
// no arguments it returns both. An unknown name returns an error listing
// the known implementations — historically it panicked, which made a
// typoed kernel selection in an embedding program fatal instead of
// recoverable.
func SweepKernels(names ...string) ([]KernelSpec, error) {
	posix, err := spec.Lookup("posix")
	if err != nil {
		return nil, err
	}
	return eval.ImplSpecs(posix, names...)
}

// WriteSweepTrace renders a finished sweep as a Chrome trace-event file
// (loadable in chrome://tracing or ui.perfetto.dev): one span per pair at
// its recorded start offset with the analyze/testgen/check phases nested
// inside, packed onto lanes that reconstruct the worker schedule.
func WriteSweepTrace(w io.Writer, res *SweepResult) error { return sweep.WriteTrace(w, res) }

// MatricesFromSweep converts a sweep result into Figure 6 matrices, one per
// swept kernel.
func MatricesFromSweep(res *SweepResult) []Matrix { return eval.MatricesFromSweep(res) }

// Analyze computes the commutativity conditions of a POSIX operation
// pair; unknown names panic with the known ops listed. Use AnalyzeIn to
// analyze a pair of another registered spec.
//
// Deprecated: use Client.Analyze, which takes a context, selects the spec
// with WithSpec, and returns an error instead of panicking.
func Analyze(opA, opB string, opt Options) PairResult {
	pr, err := AnalyzeIn("posix", opA, opB, opt)
	if err != nil {
		panic("commuter: " + err.Error())
	}
	return pr
}

// AnalyzeIn computes the commutativity conditions of an operation pair of
// the named spec ("posix" reproduces Analyze; "queue" analyzes the mail
// pipeline's communication interface). Unknown specs or ops return
// errors listing the registered alternatives.
//
// Deprecated: use Client.Analyze with WithSpec(specName); it adds
// cancellation and works over a remote binding. AnalyzeIn remains for
// callers that need the symbolic PairResult rather than the plain-data
// Analysis.
func AnalyzeIn(specName, opA, opB string, opt Options) (PairResult, error) {
	sp, err := spec.Lookup(specName)
	if err != nil {
		return PairResult{}, err
	}
	a, err := spec.OpByName(sp, opA)
	if err != nil {
		return PairResult{}, err
	}
	b, err := spec.OpByName(sp, opB)
	if err != nil {
		return PairResult{}, err
	}
	return analyzer.AnalyzePair(sp, a, b, opt), nil
}

// GenerateTests converts an analysis into concrete test cases. The
// analysis carries its spec's identity, so the right concretizer is used
// whichever spec produced it.
//
// Deprecated: use Client.GenerateTests, which runs ANALYZE + TESTGEN from
// the pair names, takes a context, and returns an error (with the
// truncation count in TestSet.Unknown) instead of panicking.
func GenerateTests(pr PairResult, opt GenOptions) []TestCase {
	specName := pr.Spec
	if specName == "" {
		specName = "posix"
	}
	sp, err := spec.Lookup(specName)
	if err != nil {
		panic("commuter: " + err.Error())
	}
	return testgen.Generate(sp, pr, opt)
}

// NewLinux returns a fresh Linux-3.8-like baseline kernel.
func NewLinux() Kernel { return monokernel.New() }

// NewSv6 returns a fresh sv6-like kernel (ScaleFS + RadixVM designs).
func NewSv6() Kernel { return svsix.New() }

// Check runs one test case against fresh kernels from the constructor and
// reports conflict-freedom plus a commutativity sanity check.
//
// Deprecated: use Client.Check, which selects the implementation by name
// (so it works over a remote binding), batches tests, and is cancellable.
// Check remains for callers supplying their own Kernel constructors.
func Check(fresh func() Kernel, tc TestCase) (CheckResult, error) {
	return kernel.Check(fresh, tc)
}

// Statbench, Openbench and Mailbench regenerate the Figure 7 curves on the
// coherence simulator. See package eval for the modes.
var (
	Statbench    = eval.Statbench
	Openbench    = eval.Openbench
	Mailbench    = eval.Mailbench
	FormatCurves = eval.FormatCurves
	FormatMatrix = eval.FormatMatrix
	DefaultCores = eval.DefaultCores
)

// Statbench modes (Figure 7a).
const (
	StatFstatx   = eval.StatFstatx
	StatRefcache = eval.StatRefcache
	StatShared   = eval.StatShared
)
