package commuter_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/commuter"
	"repro/internal/kernel"
	"repro/internal/sweep"
)

// newCacheServer starts a handler hosting the given backend and returns
// its test server.
func newCacheServer(t *testing.T, b sweep.Backend) *httptest.Server {
	t.Helper()
	h, err := commuter.NewServerHandler(commuter.Local(), commuter.ServeWithBackend(b))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestCacheRoutes(t *testing.T) {
	mem := sweep.NewMemBackend(0)
	srv := newCacheServer(t, mem)
	key := strings.Repeat("ab", 32)
	tests := []kernel.TestCase{{ID: "t0"}}
	entry, err := sweep.EncodeTestsEntry(key, tests)
	if err != nil {
		t.Fatal(err)
	}
	entryURL := func(tier, key string) string {
		return srv.URL + sweep.CacheRoutePrefix + "/" + tier + "/" + key
	}

	// Miss before anything is stored.
	if code, _ := doReq(t, http.MethodGet, entryURL(sweep.TierTestgen, key), nil); code != http.StatusNotFound {
		t.Errorf("GET empty = %d, want 404", code)
	}

	// Store, then read back byte-identically.
	if code, body := doReq(t, http.MethodPut, entryURL(sweep.TierTestgen, key), entry); code != http.StatusNoContent {
		t.Fatalf("PUT = %d (%s), want 204", code, body)
	}
	code, got := doReq(t, http.MethodGet, entryURL(sweep.TierTestgen, key), nil)
	if code != http.StatusOK {
		t.Fatalf("GET stored = %d, want 200", code)
	}
	if !bytes.Equal(got, entry) {
		t.Errorf("GET returned different bytes than PUT stored:\n%s\nvs\n%s", got, entry)
	}
	if _, ok := mem.GetTests(key); !ok {
		t.Error("PUT did not reach the hosted backend")
	}

	// Malformed requests never reach the backend.
	bad := []struct {
		name string
		url  string
		body []byte
	}{
		{"unknown tier", entryURL("warez", key), entry},
		{"short key", entryURL(sweep.TierTestgen, "abc123"), entry},
		{"non-hex key", entryURL(sweep.TierTestgen, strings.Repeat("zz", 32)), entry},
		{"uppercase key", entryURL(sweep.TierTestgen, strings.Repeat("AB", 32)), entry},
		{"dotted key", entryURL(sweep.TierTestgen, strings.Repeat("a.", 32)), entry},
	}
	for _, tc := range bad {
		if code, _ := doReq(t, http.MethodPut, tc.url, tc.body); code != http.StatusBadRequest {
			t.Errorf("PUT %s = %d, want 400", tc.name, code)
		}
	}

	// A body that is not the canonical entry for the key is rejected, not
	// stored: wrong embedded key, wrong tier decoding, or garbage.
	other := strings.Repeat("cd", 32)
	for name, body := range map[string][]byte{
		"mis-keyed entry": entry, // claims `key`, sent to `other`
		"garbage":         []byte("{not json"),
	} {
		if code, _ := doReq(t, http.MethodPut, entryURL(sweep.TierTestgen, other), body); code != http.StatusBadRequest {
			t.Errorf("PUT %s = %d, want 400", name, code)
		}
		if _, ok := mem.GetTests(other); ok {
			t.Errorf("PUT %s was stored", name)
		}
	}

	// A server hosting no cache declines the routes.
	h, err := commuter.NewServerHandler(commuter.Local())
	if err != nil {
		t.Fatal(err)
	}
	bare := httptest.NewServer(h)
	defer bare.Close()
	if code, _ := doReq(t, http.MethodGet, bare.URL+sweep.CacheRoutePrefix+"/"+sweep.TierTestgen+"/"+key, nil); code != http.StatusBadRequest {
		t.Errorf("GET on cacheless server = %d, want 400", code)
	}
}

// TestTwoServersSharedCache is the fleet topology acceptance test: server
// A hosts the cache, server B uses A as its backend over HTTP, and a
// sweep that warmed A makes B's first-ever sweep all hits — B recomputes
// nothing a fleet peer already computed.
func TestTwoServersSharedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ctx := context.Background()
	opts := []commuter.Option{commuter.WithOps("stat", "lseek", "close")}

	srvA := newCacheServer(t, sweep.NewMemBackend(0))
	peer, err := sweep.NewHTTPBackend(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}
	srvB := newCacheServer(t, peer)

	cliA, err := commuter.Dial(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer cliA.Close()
	cliB, err := commuter.Dial(srvB.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer cliB.Close()

	// Warm the fleet through A.
	warm, err := cliA.Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.TestgenMisses == 0 {
		t.Fatalf("warming sweep was not cold: %+v", warm.Cache)
	}

	// B's first sweep ever: every entry comes from A, nothing recomputes.
	shared, err := cliB.Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Cache.TestgenMisses != 0 || shared.Cache.CheckMisses != 0 {
		t.Errorf("sweep through B recomputed: %+v", shared.Cache)
	}
	if shared.Cache.TestgenHits == 0 || shared.Cache.CheckHits == 0 {
		t.Errorf("sweep through B reported no hits: %+v", shared.Cache)
	}
	for _, p := range shared.Pairs {
		if !p.Cached {
			t.Errorf("pair %s recomputed on B", p.Pair())
		}
	}

	// And the payloads agree across the fleet.
	if fmt.Sprint(stripTimings(warm).Pairs) != fmt.Sprint(stripTimings(shared).Pairs) {
		t.Error("A's computed sweep and B's shared sweep disagree")
	}
}
