package commuter_test

import (
	"testing"

	"repro/commuter"
)

func TestOpNames(t *testing.T) {
	names := commuter.OpNames()
	if len(names) != 18 {
		t.Fatalf("want 18 ops, got %d", len(names))
	}
	if names[0] != "open" || names[17] != "memwrite" {
		t.Errorf("unexpected op order: %v", names)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	pair := commuter.Analyze("stat", "unlink", commuter.Options{})
	if pair.OpA != "stat" || pair.OpB != "unlink" {
		t.Fatalf("pair ops: %s %s", pair.OpA, pair.OpB)
	}
	if len(pair.CommutativePaths()) == 0 {
		t.Fatal("stat x unlink should have commutative paths (different names)")
	}
	tests := commuter.GenerateTests(pair, commuter.GenOptions{MaxTestsPerPath: 2})
	if len(tests) == 0 {
		t.Fatal("no tests generated")
	}
	for _, tc := range tests {
		for _, fresh := range []func() commuter.Kernel{commuter.NewLinux, commuter.NewSv6} {
			res, err := commuter.Check(fresh, tc)
			if err != nil {
				t.Fatalf("%s: %v", tc.ID, err)
			}
			if len(res.Res) != 2 {
				t.Fatalf("%s: missing results", tc.ID)
			}
		}
	}
}

func TestAnalyzeUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown op")
		}
	}()
	commuter.Analyze("nope", "stat", commuter.Options{})
}

func TestKernelConstructors(t *testing.T) {
	if commuter.NewLinux().Name() != "linux" {
		t.Error("NewLinux name")
	}
	if commuter.NewSv6().Name() != "sv6" {
		t.Error("NewSv6 name")
	}
}

func TestCurveHelpers(t *testing.T) {
	c := commuter.Statbench(commuter.StatFstatx, []int{1, 2})
	if len(c.PerSec) != 2 || c.PerSec[0] <= 0 {
		t.Errorf("statbench curve: %+v", c)
	}
	out := commuter.FormatCurves("t", []commuter.Curve{c})
	if out == "" {
		t.Error("FormatCurves empty")
	}
	if len(commuter.DefaultCores) == 0 || commuter.DefaultCores[len(commuter.DefaultCores)-1] != 80 {
		t.Errorf("DefaultCores = %v", commuter.DefaultCores)
	}
}
