package commuter_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/commuter"
	"repro/internal/api"
	"repro/internal/eval"
	"repro/internal/sweep"
)

// TestFleetSweepAcrossServers is the end-to-end fleet contract: two
// `commuter serve` instances pointed at one coordinator each answer a
// concurrent sweep of the same options with the complete matrix,
// byte-identical to a single-server run, and the pair executions are
// split between them — every pair computed exactly once fleet-wide
// (asserted through the same /metrics counter the CI smoke job sums).
func TestFleetSweepAcrossServers(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ctx := context.Background()
	opts := []commuter.Option{commuter.WithOps("stat", "lseek", "close"), commuter.WithWorkers(2)}
	const pairs = 6

	// The single-server reference matrix.
	ref, err := commuter.Local().Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}

	_, coord := newLoopback(t)
	cliA, srvA := newLoopback(t, commuter.ServeWithFleet(coord.URL))
	cliB, _ := newLoopback(t, commuter.ServeWithFleet(coord.URL))

	// Metrics are process-global, so the counter delta across the sweep is
	// the fleet-wide execution count: 6 means every pair ran exactly once.
	_, before := scrape(t, srvA.URL)

	var wg sync.WaitGroup
	results := make([]*commuter.SweepResult, 2)
	errs := make([]error, 2)
	for i, cli := range []commuter.Client{cliA, cliB} {
		wg.Add(1)
		go func(i int, cli commuter.Client) {
			defer wg.Done()
			results[i], errs[i] = cli.Sweep(ctx, opts...)
		}(i, cli)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fleet member %d: %v", i, err)
		}
	}

	want := eval.FormatMatrix(eval.MatricesFromSweep(ref)[0])
	for i, res := range results {
		if len(res.Pairs) != pairs {
			t.Errorf("fleet member %d returned %d pairs, want %d (truncated matrix)", i, len(res.Pairs), pairs)
		}
		if got := eval.FormatMatrix(eval.MatricesFromSweep(res)[0]); got != want {
			t.Errorf("fleet member %d matrix diverges from single-server run\ngot:\n%s\nwant:\n%s", i, got, want)
		}
	}

	_, after := scrape(t, srvA.URL)
	if d := after["commuter_fleet_pairs_executed_total"] - before["commuter_fleet_pairs_executed_total"]; d != pairs {
		t.Errorf("fleet executed %v pairs for a %d-pair sweep, want exactly once each", d, pairs)
	}
	if d := after["commuter_fleet_duplicate_results_total"] - before["commuter_fleet_duplicate_results_total"]; d != 0 {
		t.Errorf("%v duplicate result posts during a healthy fleet sweep", d)
	}
}

// TestFleetStatusRoute pins the coordinator's status endpoint through
// the full HTTP stack: claim one lease, then read the table back.
func TestFleetStatusRoute(t *testing.T) {
	_, coord := newLoopback(t)
	fc, err := sweep.NewHTTPFleetClient(coord.URL)
	if err != nil {
		t.Fatal(err)
	}
	sw := sweep.FleetSweepSpec{Spec: "posix", Ops: []string{"stat", "close"}, Kernels: []string{"linux"}}
	cr, err := fc.Claim(context.Background(), sweep.FleetClaimRequest{
		Version: sweep.FleetAPIVersion, Worker: "w1", Max: 1, Sweep: sw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Leases) != 1 || cr.Total != 3 {
		t.Fatalf("claim over HTTP: %+v", cr)
	}
	st, err := fc.Status(context.Background(), sw, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 || st.Leased != 1 || st.Pending != 2 || st.Workers["w1"].Leased != 1 {
		t.Errorf("status over HTTP: %+v", st)
	}

	// A status read for a sweep nobody claimed from is a clean 400.
	_, err = fc.Status(context.Background(), sweep.FleetSweepSpec{Spec: "posix", Ops: []string{"lseek"}}, false)
	if err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Errorf("unknown-session status: %v, want unknown-sweep error", err)
	}
}

// TestDialRejectsWithFleet pins the option boundary: fleet membership is
// the executing side's configuration, exactly like the cache.
func TestDialRejectsWithFleet(t *testing.T) {
	cli, _ := newLoopback(t)
	_, err := cli.Sweep(context.Background(), commuter.WithFleet("http://example.invalid"))
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest || !strings.Contains(ae.Message, "serve -fleet") {
		t.Fatalf("Dial+WithFleet: %v, want bad-request pointing at serve -fleet", err)
	}
}
