package commuter

import (
	"context"
	"iter"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/sym"
	"repro/internal/testgen"
)

// Local returns the in-process binding of the Client interface: the same
// engine the deprecated top-level functions wrap, behind the v2 contract
// (contexts, errors, streaming). It is stateless and safe for concurrent
// use; per-call caches are opened on demand (use Sweep's WithCache, or
// host one shared cache behind NewServerHandler).
func Local() Client { return localClient{} }

type localClient struct{}

func (localClient) Close() error { return nil }

func (localClient) Specs(ctx context.Context) ([]SpecInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []SpecInfo
	for _, name := range spec.Names() {
		sp, err := spec.Lookup(name)
		if err != nil {
			continue // racing an unregister; skip
		}
		info := SpecInfo{
			Name:       name,
			Ops:        spec.OpNames(sp),
			Sets:       sp.Sets(),
			DefaultSet: sp.DefaultSet(),
		}
		for _, im := range sp.Impls() {
			info.Impls = append(info.Impls, im.Name)
		}
		out = append(out, info)
	}
	return out, nil
}

// resolvePair resolves the spec and both operation names, tagging unknown
// names as bad requests.
func resolvePair(o *callOptions, opA, opB string) (spec.Spec, *spec.Op, *spec.Op, error) {
	sp, err := spec.Lookup(o.specName())
	if err != nil {
		return nil, nil, nil, badRequest(err)
	}
	a, err := spec.OpByName(sp, opA)
	if err != nil {
		return nil, nil, nil, badRequest(err)
	}
	b, err := spec.OpByName(sp, opB)
	if err != nil {
		return nil, nil, nil, badRequest(err)
	}
	return sp, a, b, nil
}

func (o *callOptions) analyzerOptions() analyzer.Options {
	return analyzer.Options{
		Config:   spec.Config{LowestFD: o.lowestFD},
		MaxPaths: o.maxPaths,
	}
}

func (o *callOptions) testgenOptions(ctx context.Context) testgen.Options {
	return testgen.Options{
		MaxTestsPerPath: o.perPath,
		LowestFD:        o.lowestFD,
		// A fresh per-call solver wired to the context makes cancellation
		// land inside TESTGEN's enumeration searches too. The sweep cache
		// key deliberately excludes solvers, so this does not fragment
		// cache entries.
		Solver: &sym.Solver{Stop: func() bool { return ctx.Err() != nil }},
	}
}

func (localClient) Analyze(ctx context.Context, opA, opB string, opts ...Option) (Analysis, error) {
	o := buildOptions(opts)
	sp, a, b, err := resolvePair(&o, opA, opB)
	if err != nil {
		return Analysis{}, err
	}
	pr, err := analyzer.AnalyzePairCtx(ctx, sp, a, b, o.analyzerOptions())
	if err != nil {
		return Analysis{}, err
	}
	return analysisFrom(pr), nil
}

// analysisFrom flattens a symbolic pair analysis into its plain-data wire
// form: counts, §5.1-style clauses, and rendered per-path conditions.
func analysisFrom(r analyzer.PairResult) Analysis {
	a := Analysis{
		Spec:    r.Spec,
		OpA:     r.OpA,
		OpB:     r.OpB,
		Paths:   len(r.Paths),
		Unknown: r.Unknown(),
		Clauses: analyzer.Describe(r),
	}
	for _, p := range r.Paths {
		if p.Commutes {
			a.Commutative++
		}
		if p.CanDiverge {
			a.OrderDependent++
		}
		a.PathDetails = append(a.PathDetails, AnalysisPath{
			Condition:  p.CommuteCond.String(),
			Commutes:   p.Commutes,
			CanDiverge: p.CanDiverge,
			Unknown:    p.Unknown,
		})
	}
	return a
}

func (localClient) GenerateTests(ctx context.Context, opA, opB string, opts ...Option) (TestSet, error) {
	o := buildOptions(opts)
	sp, a, b, err := resolvePair(&o, opA, opB)
	if err != nil {
		return TestSet{}, err
	}
	pr, err := analyzer.AnalyzePairCtx(ctx, sp, a, b, o.analyzerOptions())
	if err != nil {
		return TestSet{}, err
	}
	tests, truncated := testgen.GenerateChecked(sp, pr, o.testgenOptions(ctx))
	if err := ctx.Err(); err != nil {
		// A cancelled generation pass is truncated, not small; discard it.
		return TestSet{}, err
	}
	return TestSet{
		Spec:    sp.Name(),
		OpA:     a.Name,
		OpB:     b.Name,
		Tests:   tests,
		Unknown: pr.Unknown() + truncated,
	}, nil
}

func (localClient) Check(ctx context.Context, kernelName string, tests []TestCase, opts ...Option) (CheckSummary, error) {
	o := buildOptions(opts)
	sp, err := spec.Lookup(o.specName())
	if err != nil {
		return CheckSummary{}, badRequest(err)
	}
	impls, err := eval.ImplSpecs(sp, kernelName)
	if err != nil {
		return CheckSummary{}, badRequest(err)
	}
	out := CheckSummary{Kernel: impls[0].Name}
	// Replay tests grouped by shared initial state on one long-lived kernel
	// (apply each setup once, journal-rollback between tests) instead of
	// constructing two fresh kernels per test. Grouping reorders execution,
	// so verdicts are stored by original index to keep the response aligned
	// with the request.
	type group struct {
		setup   kernel.Setup
		tests   []TestCase
		indices []int
	}
	var groups []group
	byID := map[string]int{}
	for i, tc := range tests {
		id := tc.SetupID
		if id == "" {
			id = tc.Setup.Fingerprint()
		}
		gi, ok := byID[id]
		if !ok {
			gi = len(groups)
			byID[id] = gi
			groups = append(groups, group{setup: tc.Setup})
		}
		groups[gi].tests = append(groups[gi].tests, tc)
		groups[gi].indices = append(groups[gi].indices, i)
	}
	out.Verdicts = make([]TestVerdict, len(tests))
	rep := kernel.NewReplayer(impls[0].New)
	for _, g := range groups {
		if err := ctx.Err(); err != nil {
			return CheckSummary{}, err
		}
		i := 0
		err := rep.CheckGroup(g.setup, g.tests, func(res kernel.CheckResult) bool {
			v := TestVerdict{TestID: g.tests[i].ID, ConflictFree: res.ConflictFree, Commuted: res.Commuted}
			for _, c := range res.Conflicts {
				v.Conflicts = append(v.Conflicts, c.CellName)
			}
			out.Total++
			if !res.ConflictFree {
				out.Conflicts++
			}
			out.Verdicts[g.indices[i]] = v
			i++
			return ctx.Err() == nil
		})
		if err != nil {
			return CheckSummary{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return CheckSummary{}, err
	}
	return out, nil
}

// sweepConfig resolves the options into an engine configuration. The
// returned cleanup is non-nil when the call opened its own cache.
func (o *callOptions) sweepConfig() (sweep.Config, error) {
	sp, err := spec.Lookup(o.specName())
	if err != nil {
		return sweep.Config{}, badRequest(err)
	}
	sel := o.ops
	if sel == "" {
		sel = sp.DefaultSet()
	}
	ops, err := spec.OpSet(sp, sel)
	if err != nil {
		return sweep.Config{}, badRequest(err)
	}
	kernels, err := eval.ImplSpecs(sp, o.kernels...)
	if err != nil {
		return sweep.Config{}, badRequest(err)
	}
	cfg := sweep.Config{
		Spec:     sp,
		Ops:      ops,
		Kernels:  kernels,
		Analyzer: o.analyzerOptions(),
		Testgen:  testgen.Options{MaxTestsPerPath: o.perPath, LowestFD: o.lowestFD},
		Workers:  o.workers,
		Cache:    o.cache,
	}
	if cfg.Cache == nil && o.cacheDir != "" {
		if cfg.Cache, err = sweep.OpenBackend(o.cacheDir); err != nil {
			return sweep.Config{}, err
		}
	}
	return cfg, nil
}

func (c localClient) Sweep(ctx context.Context, opts ...Option) (*SweepResult, error) {
	return drainSweep(c.SweepStream(ctx, opts...))
}

func (localClient) SweepStream(ctx context.Context, opts ...Option) iter.Seq2[SweepUpdate, error] {
	return func(yield func(SweepUpdate, error) bool) {
		o := buildOptions(opts)
		cfg, err := o.sweepConfig()
		if err != nil {
			yield(SweepUpdate{}, err)
			return
		}
		var fc sweep.FleetClient
		if o.fleet != "" {
			if fc, err = sweep.NewHTTPFleetClient(o.fleet); err != nil {
				yield(SweepUpdate{}, badRequest(err))
				return
			}
		}

		// The engine pushes events from worker goroutines; the iterator
		// pulls. A channel bridges the two, and an own cancel scope makes
		// "consumer stopped iterating" look like cancellation to the
		// engine, so its workers wind down and the bridging goroutine
		// always terminates.
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		updates := make(chan SweepUpdate)
		var (
			res    *sweep.Result
			runErr error
		)
		cfg.Progress = func(ev sweep.Event) {
			upd := SweepUpdate{Pair: ev.Result}
			ev.Result = nil
			upd.Progress = &ev
			select {
			case updates <- upd:
			case <-sctx.Done():
			}
		}
		go func() {
			defer close(updates)
			if fc != nil {
				res, runErr = sweep.RunFleet(sctx, cfg, fc)
			} else {
				res, runErr = sweep.RunContext(sctx, cfg)
			}
		}()

		for upd := range updates {
			if !yield(upd, nil) {
				cancel()
				for range updates { // wait out the engine's shutdown
				}
				return
			}
		}
		if runErr != nil {
			yield(SweepUpdate{}, runErr)
			return
		}
		yield(SweepUpdate{Result: res}, nil)
	}
}
