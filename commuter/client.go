package commuter

import (
	"context"
	"errors"
	"iter"
	"strings"

	"repro/internal/api"
	"repro/internal/sweep"
)

// Client is the v2 façade over the COMMUTER pipeline: ANALYZE, TESTGEN,
// CHECK and the parallel sweep behind one interface that is explicitly a
// contract, not a binding. Every method takes a context.Context —
// cancellation reaches all the way into the solver's backtracking search —
// returns errors instead of panicking, accepts functional options, and
// speaks in plain data (names, test cases, cells) rather than symbolic
// state, which is what lets two very different implementations satisfy it:
//
//   - Local() runs the pipeline in-process, and
//   - Dial(url) speaks the versioned JSON wire format (internal/api) to a
//     `commuter serve` instance, streaming sweeps as NDJSON.
//
// Code written against Client runs identically over either binding; the
// CLI's -server flag is nothing but a swap of constructors.
type Client interface {
	// Specs enumerates the interface specifications the implementation
	// can analyze, with their operations, named subsets and
	// implementation bindings.
	Specs(ctx context.Context) ([]SpecInfo, error)

	// Analyze computes the commutativity conditions of one operation
	// pair of the selected spec (WithSpec; default posix). Unknown spec
	// or op names error with the known alternatives listed.
	Analyze(ctx context.Context, opA, opB string, opts ...Option) (Analysis, error)

	// GenerateTests runs ANALYZE + TESTGEN for one pair and returns the
	// concrete test cases. A nonzero TestSet.Unknown means the solver
	// budget truncated the set (a lower bound, not a proof).
	GenerateTests(ctx context.Context, opA, opB string, opts ...Option) (TestSet, error)

	// Check runs concrete tests against one named implementation of the
	// selected spec and reports per-test conflict-freedom verdicts plus
	// the aggregate Figure 6 cell counts.
	Check(ctx context.Context, kernel string, tests []TestCase, opts ...Option) (CheckSummary, error)

	// Sweep fans ANALYZE → TESTGEN → CHECK across every unordered pair
	// of the selected operation universe (WithOps/WithOpSet) and kernels
	// (WithKernels), optionally caching per-pair results (WithCache for
	// Local; the serving side's cache for Dial).
	Sweep(ctx context.Context, opts ...Option) (*SweepResult, error)

	// SweepStream is Sweep with streaming: it yields one update per
	// finished pair as it completes (Progress and Pair set), then a final
	// update carrying the Result. Iteration stops on the first non-nil
	// error; breaking out of the loop early cancels the sweep.
	SweepStream(ctx context.Context, opts ...Option) iter.Seq2[SweepUpdate, error]

	// Close releases resources held by the binding (idle connections for
	// Dial; a no-op for Local).
	Close() error
}

// Re-exported result types of the v2 API. They are the wire types: plain
// data, identical through either binding.
type (
	// SpecInfo describes one registered interface specification.
	SpecInfo = api.SpecInfo
	// Analysis summarizes one pair's commutativity analysis.
	Analysis = api.Analysis
	// AnalysisPath is one joint path's rendered condition and verdicts.
	AnalysisPath = api.PathSummary
	// TestSet is one pair's generated concrete tests.
	TestSet = api.TestSet
	// CheckSummary aggregates per-test verdicts on one kernel.
	CheckSummary = api.CheckSummary
	// TestVerdict is one test's conflict-freedom verdict.
	TestVerdict = api.TestVerdict
)

// SweepUpdate is one element of a sweep stream. Exactly one of the
// terminal fields is set on the last update (Result); every earlier
// update carries the finished pair (Pair) and its progress report
// (Progress).
type SweepUpdate struct {
	// Progress is the per-pair progress report (Done/Total counters and
	// timings), nil on the terminal update.
	Progress *SweepEvent
	// Pair is the finished pair's full result, nil on the terminal
	// update.
	Pair *SweepPair
	// Result is the completed sweep, set only on the terminal update.
	Result *SweepResult
}

// Option is a functional option accepted by every Client method; each
// method reads the fields relevant to it and ignores the rest.
type Option func(*callOptions)

type callOptions struct {
	spec     string
	lowestFD bool
	maxPaths int
	perPath  int
	workers  int
	cacheDir string
	cache    sweep.Backend
	ops      string
	kernels  []string
	fleet    string
}

// WithSpec selects the interface specification to analyze ("posix" when
// not given; "queue" is the mail pipeline's communication interface).
func WithSpec(name string) Option { return func(o *callOptions) { o.spec = name } }

// WithLowestFD models POSIX's lowest-FD allocation rule instead of the
// O_ANYFD specification nondeterminism (§4 of the paper).
func WithLowestFD(on bool) Option { return func(o *callOptions) { o.lowestFD = on } }

// WithMaxPaths caps joint path exploration per pair (default 4096).
func WithMaxPaths(n int) Option { return func(o *callOptions) { o.maxPaths = n } }

// WithTestsPerPath caps the isomorphism classes enumerated per
// commutative path (default 4).
func WithTestsPerPath(n int) Option { return func(o *callOptions) { o.perPath = n } }

// WithWorkers sizes the sweep worker pool (default: one per CPU of the
// executing side).
func WithWorkers(n int) Option { return func(o *callOptions) { o.workers = n } }

// WithCache enables the two-tier sweep cache described by spec: a bare
// path or "dir:PATH" for the on-disk backend, "mem[:N]" for a bounded
// in-memory LRU, an http(s) URL for a peer `commuter serve` instance's
// shared cache, or a comma list layering tiers fastest-first (see
// sweep.OpenBackend). It applies to Local clients; a Dial client rejects
// it — the serving side's cache is configured by `commuter serve -cache`.
func WithCache(spec string) Option { return func(o *callOptions) { o.cacheDir = spec } }

// WithCacheBackend injects an already-open cache backend, sharing one
// handle (and its statistics) across calls; the serve endpoint uses it to
// put the process-wide cache behind every request.
func WithCacheBackend(b sweep.Backend) Option { return func(o *callOptions) { o.cache = b } }

// WithFleet makes Sweep a fleet member coordinated by the `commuter
// serve` instance at coordinatorURL: the sweep claims pair leases from
// the coordinator, executes only those, and merges the fleet-wide
// matrix — N processes sweeping with the same options and coordinator
// compute every pair exactly once between them, and each returns the
// identical complete result. It applies to Local clients (a server
// joins a fleet via `commuter serve -fleet`); a Dial client rejects it.
func WithFleet(coordinatorURL string) Option {
	return func(o *callOptions) { o.fleet = coordinatorURL }
}

// WithOps selects an explicit operation universe for Sweep by name.
func WithOps(names ...string) Option {
	return func(o *callOptions) { o.ops = strings.Join(names, ",") }
}

// WithOpSet selects the operation universe with the CLI's selector
// syntax: "all", a spec-named subset ("fs"), or a comma list. The default
// is the spec's own default set.
func WithOpSet(sel string) Option { return func(o *callOptions) { o.ops = sel } }

// WithKernels names the implementations Sweep checks (default: all of
// the spec's implementations). Unknown names error with the known
// implementations listed.
func WithKernels(names ...string) Option {
	return func(o *callOptions) { o.kernels = append([]string(nil), names...) }
}

func buildOptions(opts []Option) callOptions {
	var o callOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}

// specName resolves the spec selector's default.
func (o *callOptions) specName() string {
	if o.spec == "" {
		return "posix"
	}
	return o.spec
}

// wire renders the options in their wire form.
func (o *callOptions) wire() api.Options {
	return api.Options{
		Spec:            o.spec,
		LowestFD:        o.lowestFD,
		MaxPaths:        o.maxPaths,
		MaxTestsPerPath: o.perPath,
		Workers:         o.workers,
		Ops:             o.ops,
		Kernels:         o.kernels,
	}
}

// optionsFromWire reconstructs functional options from their wire form —
// the serve endpoint's half of the round trip.
func optionsFromWire(w api.Options) []Option {
	var opts []Option
	if w.Spec != "" {
		opts = append(opts, WithSpec(w.Spec))
	}
	if w.LowestFD {
		opts = append(opts, WithLowestFD(true))
	}
	if w.MaxPaths != 0 {
		opts = append(opts, WithMaxPaths(w.MaxPaths))
	}
	if w.MaxTestsPerPath != 0 {
		opts = append(opts, WithTestsPerPath(w.MaxTestsPerPath))
	}
	if w.Workers != 0 {
		opts = append(opts, WithWorkers(w.Workers))
	}
	if w.Ops != "" {
		opts = append(opts, WithOpSet(w.Ops))
	}
	if len(w.Kernels) != 0 {
		opts = append(opts, WithKernels(w.Kernels...))
	}
	return opts
}

// badRequest tags a name-resolution error as a caller mistake, so the
// serve endpoint can map it to a 400 and a remote caller sees the same
// "unknown X (known: ...)" message a local caller would.
func badRequest(err error) error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	return &api.Error{Code: api.CodeBadRequest, Message: err.Error()}
}

// drainSweep runs a sweep stream to completion and returns its terminal
// result; both bindings implement Sweep with it.
func drainSweep(stream iter.Seq2[SweepUpdate, error]) (*SweepResult, error) {
	var res *SweepResult
	for upd, err := range stream {
		if err != nil {
			return nil, err
		}
		if upd.Result != nil {
			res = upd.Result
		}
	}
	if res == nil {
		return nil, errors.New("commuter: sweep stream ended without a result")
	}
	return res, nil
}
