package commuter_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/commuter"
)

// TestLocalAnalyze pins the local binding against the v1 shim: same
// counts, same clauses, and the same one-line summary.
func TestLocalAnalyze(t *testing.T) {
	cli := commuter.Local()
	defer cli.Close()
	a, err := cli.Analyze(context.Background(), "stat", "unlink")
	if err != nil {
		t.Fatal(err)
	}
	want := commuter.Analyze("stat", "unlink", commuter.Options{})
	if a.Paths != len(want.Paths) {
		t.Errorf("paths: %d, want %d", a.Paths, len(want.Paths))
	}
	if a.Commutative != len(want.CommutativePaths()) {
		t.Errorf("commutative: %d, want %d", a.Commutative, len(want.CommutativePaths()))
	}
	if a.Summary() != want.Summary() {
		t.Errorf("summary mismatch:\n v2: %s\n v1: %s", a.Summary(), want.Summary())
	}
	if len(a.PathDetails) != a.Paths {
		t.Errorf("%d path details for %d paths", len(a.PathDetails), a.Paths)
	}
	if len(a.Clauses) == 0 {
		t.Error("no clauses for a commutative pair")
	}
}

// TestLocalUnknownNames pins the v2 error contract: unknown specs, ops
// and kernels return errors naming the known alternatives — the panics
// stay confined to the deprecated shims.
func TestLocalUnknownNames(t *testing.T) {
	cli := commuter.Local()
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		call func() error
		want string
	}{
		{"spec", func() error {
			_, err := cli.Analyze(ctx, "stat", "stat", commuter.WithSpec("posxi"))
			return err
		}, "known specs:"},
		{"op", func() error {
			_, err := cli.Analyze(ctx, "renme", "rename")
			return err
		}, "known ops:"},
		{"op-testgen", func() error {
			_, err := cli.GenerateTests(ctx, "stat", "statt")
			return err
		}, "known ops:"},
		{"kernel", func() error {
			_, err := cli.Check(ctx, "sv7", nil)
			return err
		}, "known:"},
		{"sweep-ops", func() error {
			_, err := cli.Sweep(ctx, commuter.WithOps("stat", "nope"))
			return err
		}, "known ops:"},
		{"sweep-kernel", func() error {
			_, err := cli.Sweep(ctx, commuter.WithOps("stat"), commuter.WithKernels("sv7"))
			return err
		}, "known:"},
	} {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: unknown name did not error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not list the known names (%q)", tc.name, err, tc.want)
		}
	}
}

// TestSweepKernelsError pins the repaired v1 helper: unknown kernel names
// return an error listing the known implementations instead of panicking
// (or being ignored).
func TestSweepKernelsError(t *testing.T) {
	ks, err := commuter.SweepKernels()
	if err != nil || len(ks) != 2 {
		t.Fatalf("SweepKernels() = %d specs, %v; want both kernels", len(ks), err)
	}
	if _, err := commuter.SweepKernels("sv7"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("SweepKernels(sv7) = %v, want error listing known implementations", err)
	}
}

// TestLocalSpecs pins spec discovery against the registry.
func TestLocalSpecs(t *testing.T) {
	infos, err := commuter.Local().Specs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]commuter.SpecInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	posix, ok := byName["posix"]
	if !ok {
		t.Fatal("posix spec missing from discovery")
	}
	if len(posix.Ops) != 18 || len(posix.Impls) != 2 {
		t.Errorf("posix: %d ops, %v impls", len(posix.Ops), posix.Impls)
	}
	if _, ok := byName["queue"]; !ok {
		t.Error("queue spec missing from discovery")
	}
	// The vm and kv interfaces ship with one reference implementation each
	// and advertise their named op subsets, so /v1/specs is enough for a
	// client to assemble any sweep invocation.
	for name, want := range map[string]struct {
		ops   int
		sets  []string
		impls []string
	}{
		"vm": {ops: 5, sets: []string{"map", "mem"}, impls: []string{"memvm"}},
		"kv": {ops: 4, sets: []string{"point", "range"}, impls: []string{"memkv"}},
	} {
		in, ok := byName[name]
		if !ok {
			t.Errorf("%s spec missing from discovery", name)
			continue
		}
		if len(in.Ops) != want.ops {
			t.Errorf("%s: %d ops, want %d", name, len(in.Ops), want.ops)
		}
		for _, set := range want.sets {
			if len(in.Sets[set]) == 0 {
				t.Errorf("%s: named subset %q missing (have %v)", name, set, in.Sets)
			}
		}
		if !reflect.DeepEqual(in.Impls, want.impls) {
			t.Errorf("%s: impls %v, want %v", name, in.Impls, want.impls)
		}
	}
}

// TestLocalPipelineEndToEnd drives the whole v2 pipeline in-process:
// analyze, generate, check, and a streamed sweep whose final result
// agrees with its own per-pair updates.
func TestLocalPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	cli := commuter.Local()
	ctx := context.Background()

	ts, err := cli.GenerateTests(ctx, "stat", "unlink", commuter.WithTestsPerPath(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Tests) == 0 {
		t.Fatal("no tests generated for stat x unlink")
	}
	for _, kn := range []string{"linux", "sv6"} {
		sum, err := cli.Check(ctx, kn, ts.Tests)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Total != len(ts.Tests) || len(sum.Verdicts) != len(ts.Tests) {
			t.Errorf("%s: checked %d of %d tests (%d verdicts)", kn, sum.Total, len(ts.Tests), len(sum.Verdicts))
		}
	}

	var pairs, progress int
	var final *commuter.SweepResult
	for upd, err := range cli.SweepStream(ctx, commuter.WithOps("stat", "lseek", "close"), commuter.WithWorkers(2)) {
		if err != nil {
			t.Fatal(err)
		}
		if upd.Pair != nil {
			pairs++
		}
		if upd.Progress != nil {
			progress++
		}
		if upd.Result != nil {
			final = upd.Result
		}
	}
	if final == nil {
		t.Fatal("stream ended without a result")
	}
	if want := 6; pairs != want || progress != want || len(final.Pairs) != want {
		t.Errorf("pairs=%d progress=%d result pairs=%d, want %d each", pairs, progress, len(final.Pairs), want)
	}
}

// TestLocalSweepStreamEarlyBreak pins the pull-side cancellation path:
// breaking out of the iterator must stop the sweep without leaking the
// bridge goroutine (the -race CI job watches the latter).
func TestLocalSweepStreamEarlyBreak(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	cli := commuter.Local()
	seen := 0
	for upd, err := range cli.SweepStream(context.Background(), commuter.WithOps("stat", "lseek", "close")) {
		if err != nil {
			t.Fatal(err)
		}
		if upd.Result != nil {
			t.Fatal("result arrived before the break")
		}
		seen++
		break
	}
	if seen != 1 {
		t.Fatalf("saw %d updates, want 1", seen)
	}
}

// TestLocalSweepCancel pins the acceptance criterion for the local
// binding: cancelling mid-sweep surfaces context.Canceled.
func TestLocalSweepCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cli := commuter.Local()
	var sawErr error
	for upd, err := range cli.SweepStream(ctx, commuter.WithOps("stat", "lseek", "close")) {
		if err != nil {
			sawErr = err
			break
		}
		if upd.Progress != nil {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Errorf("cancelled stream ended with %v, want context.Canceled", sawErr)
	}
}
