package commuter

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/api"
)

// Dial returns the remote binding of the Client interface: every call is
// translated to the versioned JSON wire format (internal/api) and
// executed by the `commuter serve` instance at baseURL, with sweeps
// streamed back as NDJSON. Dial itself performs no I/O — the first call
// does — so constructing a client is free and never blocks.
//
// Cancellation is end to end: cancelling a call's context aborts the
// HTTP request, the server observes the disconnect as its own context
// cancellation, and the sweep's workers stop just as a local sweep's
// would. Errors come back as the same "unknown X (known: ...)" messages
// the local binding produces.
func Dial(baseURL string) (Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("commuter: dial %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("commuter: dial %q: URL must be http:// or https://", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("commuter: dial %q: URL has no host", baseURL)
	}
	return &remoteClient{base: u, hc: &http.Client{}}, nil
}

type remoteClient struct {
	base *url.URL
	hc   *http.Client
}

func (c *remoteClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// remoteOptions validates that the options make sense for a remote call.
func remoteOptions(opts []Option) (callOptions, error) {
	o := buildOptions(opts)
	if o.cacheDir != "" || o.cache != nil {
		return o, &api.Error{Code: api.CodeBadRequest,
			Message: "commuter: WithCache applies to local clients; a server's cache is configured by `commuter serve -cache`"}
	}
	if o.fleet != "" {
		return o, &api.Error{Code: api.CodeBadRequest,
			Message: "commuter: WithFleet applies to local clients; a server joins a fleet via `commuter serve -fleet`"}
	}
	return o, nil
}

// do issues one request (POST with a JSON body, or GET when req is nil)
// and decodes one JSON response.
func (c *remoteClient) do(ctx context.Context, path string, req, resp any) error {
	var body []byte
	if req != nil {
		var err error
		if body, err = json.Marshal(req); err != nil {
			return fmt.Errorf("commuter: encode %s request: %w", path, err)
		}
	}
	hres, err := c.send(ctx, path, body)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if err := json.NewDecoder(hres.Body).Decode(resp); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("commuter: decode %s response: %w", path, err)
	}
	// Drain the encoder's trailing newline: closing a body with unread
	// bytes discards the connection instead of returning it to the
	// keep-alive pool, costing a TCP (and TLS) handshake per call.
	io.Copy(io.Discard, hres.Body)
	return nil
}

// send issues the HTTP exchange (POST with body, GET without) and
// normalizes transport and server errors; a non-nil response is an OK
// whose body the caller must close.
func (c *remoteClient) send(ctx context.Context, path string, body []byte) (*http.Response, error) {
	method, reader := http.MethodGet, io.Reader(nil)
	if body != nil {
		method, reader = http.MethodPost, bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.base.JoinPath(path).String(), reader)
	if err != nil {
		return nil, fmt.Errorf("commuter: %s: %w", path, err)
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		// Surface the caller's cancellation as the bare context error —
		// the contract callers select on — rather than net/http's
		// wrapping of it.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("commuter: %s: %w", path, err)
	}
	if hres.StatusCode != http.StatusOK {
		defer hres.Body.Close()
		return nil, decodeError(hres)
	}
	return hres, nil
}

// decodeError turns a non-200 response into the wire error it carries,
// falling back to a generic message for non-conforming bodies.
func decodeError(hres *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(hres.Body, 1<<16))
	var ae api.Error
	if err := json.Unmarshal(data, &ae); err == nil && ae.Message != "" {
		return &ae
	}
	return fmt.Errorf("commuter: server returned %s: %s", hres.Status, strings.TrimSpace(string(data)))
}

func (c *remoteClient) Specs(ctx context.Context) ([]SpecInfo, error) {
	var resp api.SpecsResponse
	if err := c.do(ctx, api.PathSpecs, nil, &resp); err != nil {
		return nil, err
	}
	if resp.Version != api.Version {
		return nil, api.Errorf(api.CodeVersionMismatch,
			"commuter: server speaks wire version %d, this client speaks %d", resp.Version, api.Version)
	}
	return resp.Specs, nil
}

func (c *remoteClient) Analyze(ctx context.Context, opA, opB string, opts ...Option) (Analysis, error) {
	o, err := remoteOptions(opts)
	if err != nil {
		return Analysis{}, err
	}
	var out Analysis
	req := api.AnalyzeRequest{Version: api.Version, OpA: opA, OpB: opB, Options: o.wire()}
	if err := c.do(ctx, api.PathAnalyze, &req, &out); err != nil {
		return Analysis{}, err
	}
	return out, nil
}

func (c *remoteClient) GenerateTests(ctx context.Context, opA, opB string, opts ...Option) (TestSet, error) {
	o, err := remoteOptions(opts)
	if err != nil {
		return TestSet{}, err
	}
	var out TestSet
	req := api.TestgenRequest{Version: api.Version, OpA: opA, OpB: opB, Options: o.wire()}
	if err := c.do(ctx, api.PathTestgen, &req, &out); err != nil {
		return TestSet{}, err
	}
	// The setup content address is a local memo excluded from the wire
	// format; recompute it so remote-obtained test sets are pre-grouped
	// for Check exactly like locally generated ones.
	for i := range out.Tests {
		out.Tests[i].SetupID = out.Tests[i].Setup.Fingerprint()
	}
	return out, nil
}

func (c *remoteClient) Check(ctx context.Context, kernelName string, tests []TestCase, opts ...Option) (CheckSummary, error) {
	o, err := remoteOptions(opts)
	if err != nil {
		return CheckSummary{}, err
	}
	var out CheckSummary
	req := api.CheckRequest{Version: api.Version, Kernel: kernelName, Tests: tests, Options: o.wire()}
	if err := c.do(ctx, api.PathCheck, &req, &out); err != nil {
		return CheckSummary{}, err
	}
	return out, nil
}

func (c *remoteClient) Sweep(ctx context.Context, opts ...Option) (*SweepResult, error) {
	return drainSweep(c.SweepStream(ctx, opts...))
}

func (c *remoteClient) SweepStream(ctx context.Context, opts ...Option) iter.Seq2[SweepUpdate, error] {
	return func(yield func(SweepUpdate, error) bool) {
		o, err := remoteOptions(opts)
		if err != nil {
			yield(SweepUpdate{}, err)
			return
		}
		body, err := json.Marshal(api.SweepRequest{Version: api.Version, Options: o.wire()})
		if err != nil {
			yield(SweepUpdate{}, fmt.Errorf("commuter: encode sweep request: %w", err))
			return
		}
		hres, err := c.send(ctx, api.PathSweep, body)
		if err != nil {
			yield(SweepUpdate{}, err)
			return
		}
		// Closing the body on early exit aborts the server-side sweep:
		// the server sees the disconnect as context cancellation.
		defer hres.Body.Close()

		dec := json.NewDecoder(hres.Body)
		for {
			var fr api.Frame
			if err := dec.Decode(&fr); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					yield(SweepUpdate{}, cerr)
				} else if errors.Is(err, io.EOF) {
					yield(SweepUpdate{}, errors.New("commuter: sweep stream ended without a terminal frame"))
				} else {
					yield(SweepUpdate{}, fmt.Errorf("commuter: sweep stream: %w", err))
				}
				return
			}
			switch fr.Type {
			case api.FrameUpdate:
				upd := SweepUpdate{Pair: fr.Pair}
				if fr.Progress != nil {
					ev := fr.Progress.Event()
					ev.Result = fr.Pair
					upd.Progress = &ev
				}
				if !yield(upd, nil) {
					return
				}
			case api.FrameResult:
				if fr.Result == nil {
					yield(SweepUpdate{}, errors.New("commuter: sweep result frame carried no result"))
					return
				}
				yield(SweepUpdate{Result: fr.Result.ToSweep()}, nil)
				return
			case api.FrameError:
				err := error(fr.Error)
				if fr.Error == nil {
					err = errors.New("commuter: sweep error frame carried no error")
				} else if fr.Error.Code == api.CodeCanceled && ctx.Err() != nil {
					err = ctx.Err()
				}
				yield(SweepUpdate{}, err)
				return
			default:
				// Unknown frame types from a same-version server are
				// additive extensions; skip them.
			}
		}
	}
}
