package commuter

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// ServerOption configures NewServerHandler.
type ServerOption func(*serverOptions)

type serverOptions struct {
	cacheSpec string
	backend   sweep.Backend
	workers   int
	logger    *slog.Logger
	pprof     bool
	fleetURL  string
}

// ServeWithCache hosts the two-tier sweep cache described by spec behind
// every sweep the handler serves: one shared handle, so concurrent
// clients' sweeps serve and warm the same entries, and per-request
// results report per-request hit/miss statistics. The spec is anything
// sweep.OpenBackend accepts — a directory path (or "dir:PATH"), "mem[:N]"
// for a bounded in-memory LRU, an http(s) URL naming a peer server's
// shared cache, or a comma list layering tiers fastest-first.
func ServeWithCache(spec string) ServerOption {
	return func(o *serverOptions) { o.cacheSpec = spec }
}

// ServeWithBackend hosts an already-open cache backend behind every sweep
// the handler serves; it takes precedence over ServeWithCache. Use it to
// share one handle (and its statistics) with the rest of the process, or
// to inject a backend composition OpenBackend syntax cannot express.
func ServeWithBackend(b sweep.Backend) ServerOption {
	return func(o *serverOptions) { o.backend = b }
}

// ServeWithWorkers sets the worker-pool size used for sweep requests that
// do not specify one (the default is one worker per server CPU).
func ServeWithWorkers(n int) ServerOption {
	return func(o *serverOptions) { o.workers = n }
}

// ServeWithLogger routes the handler's structured request logs through
// log; the default is slog.Default(). Every request logs one line at
// Info with its generated request id (also returned to the client in the
// X-Request-Id response header), method, route, status and duration.
func ServeWithLogger(log *slog.Logger) ServerOption {
	return func(o *serverOptions) { o.logger = log }
}

// ServeWithPprof additionally mounts the runtime profiler under
// /debug/pprof/ (index, cmdline, profile, symbol, trace and the named
// runtime profiles). Off by default: the endpoints expose goroutine
// stacks and CPU time to anyone who can reach the port, so opt in only
// where the listener is trusted.
func ServeWithPprof() ServerOption {
	return func(o *serverOptions) { o.pprof = true }
}

// ServeWithFleet makes every sweep this server runs a fleet member
// coordinated by the server at coordinatorURL: instead of executing the
// full pair list locally, the sweep claims pair leases from the
// coordinator, executes only those, and merges the fleet-wide matrix.
// Point N servers at one coordinator (which may be one of the N — a
// server is always willing to coordinate, the flag only changes whose
// table it works from) and a sweep submitted to each computes every pair
// exactly once fleet-wide. Pair cells flow into the coordinator's shared
// cache, so combine this with ServeWithCache pointing at the same
// backend for warm restarts.
func ServeWithFleet(coordinatorURL string) ServerOption {
	return func(o *serverOptions) { o.fleetURL = coordinatorURL }
}

// NewServerHandler returns the HTTP side of the wire contract: an
// http.Handler exposing backend under the versioned JSON API that Dial
// speaks (analyze/testgen/check as request-response, sweeps as NDJSON
// streams, plus spec discovery and a health endpoint).
//
// The backend is any Client — normally Local(), but a Dial client works
// too, making the handler a transparent proxy. Request contexts are
// passed straight through, so a client hangup cancels the backend work it
// started.
func NewServerHandler(backend Client, opts ...ServerOption) (http.Handler, error) {
	var so serverOptions
	for _, f := range opts {
		f(&so)
	}
	s := &server{backend: backend, cache: so.backend, workers: so.workers, log: so.logger, fleetURL: so.fleetURL}
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.cache == nil && so.cacheSpec != "" {
		var err error
		if s.cache, err = sweep.OpenBackend(so.cacheSpec); err != nil {
			return nil, err
		}
	}
	// Every server is willing to coordinate — the hub costs nothing until
	// a worker claims — so which instance coordinates a given sweep is
	// purely the fleet's choice of URL, not a deployment-time role.
	s.hub = sweep.NewFleetHub(0, nil)
	s.hub.SetCache(s.cache)
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathHealth, s.health)
	mux.HandleFunc("GET "+api.PathSpecs, s.specs)
	mux.HandleFunc("POST "+api.PathAnalyze, s.analyze)
	mux.HandleFunc("POST "+api.PathTestgen, s.testgen)
	mux.HandleFunc("POST "+api.PathCheck, s.check)
	mux.HandleFunc("POST "+api.PathSweep, s.sweep)
	mux.HandleFunc("GET "+sweep.CacheRoutePrefix+"/{tier}/{key}", s.cacheGet)
	mux.HandleFunc("PUT "+sweep.CacheRoutePrefix+"/{tier}/{key}", s.cachePut)
	mux.HandleFunc("POST "+api.PathFleetClaim, s.fleetClaim)
	mux.HandleFunc("POST "+api.PathFleetResult, s.fleetResult)
	mux.HandleFunc("GET "+api.PathFleetStatus, s.fleetStatus)
	mux.Handle("GET "+api.PathMetrics, obs.Handler(obs.Default))
	if so.pprof {
		// Mounted on this mux explicitly (the pprof package's init only
		// touches http.DefaultServeMux, which this handler never serves).
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux), nil
}

type server struct {
	backend  Client
	cache    sweep.Backend
	workers  int
	log      *slog.Logger
	hub      *sweep.FleetHub
	fleetURL string
}

// HTTP-layer metrics, shared by every handler in the process so a scrape
// of any one listener sees the process's whole serving picture.
var (
	metricHTTPRequests = obs.Default.CounterVec(
		"commuter_http_requests_total",
		"Completed HTTP requests by mux route and status code.",
		"route", "code")
	metricHTTPSeconds = obs.Default.HistogramVec(
		"commuter_http_request_seconds",
		"HTTP request wall time by mux route, including streaming time.",
		obs.DefBuckets, "route")
	metricHTTPInflight = obs.Default.Gauge(
		"commuter_http_requests_inflight",
		"HTTP requests currently being served.")
)

// statusWriter records the response status for logs and metrics. Unwrap
// keeps http.NewResponseController working through the wrapper — the
// sweep handler's per-frame Flush depends on it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// requestID mints a 16-hex-digit random id for log correlation.
func requestID() string {
	var b [8]byte
	rand.Read(b[:]) // never fails post-Go 1.24; worst case is a zero id
	return hex.EncodeToString(b[:])
}

// instrument wraps the routed mux with the observability envelope: the
// API version header, a per-request id (echoed in X-Request-Id), request
// metrics labeled by mux route, and one structured log line per request.
func (s *server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := requestID()
		w.Header().Set(api.VersionHeader, fmt.Sprint(api.Version))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		metricHTTPInflight.Inc()
		mux.ServeHTTP(sw, r)
		metricHTTPInflight.Dec()

		// The mux stamped the matched pattern onto the request; an empty
		// pattern is a 404/405, bucketed together so unmatched paths
		// cannot mint unbounded label values.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing at all
		}
		elapsed := time.Since(start)
		metricHTTPRequests.With(route, strconv.Itoa(status)).Inc()
		metricHTTPSeconds.With(route).Observe(elapsed.Seconds())
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", status),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr))
	})
}

// maxRequestBytes bounds request bodies (check requests carry whole test
// sets; 64 MiB is two orders of magnitude above the full 18-op corpus).
const maxRequestBytes = 64 << 20

// decodeRequest parses the body and enforces the wire version; version is
// the request's own stamp. It writes the error response itself when it
// returns false.
func decodeRequest(w http.ResponseWriter, r *http.Request, req any, version func() int) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "malformed request: %v", err))
		return false
	}
	if err := api.CheckVersion(version()); err != nil {
		writeError(w, err)
		return false
	}
	return true
}

// writeError maps a wire error to its status code and writes it.
func writeError(w http.ResponseWriter, ae *api.Error) {
	status := http.StatusInternalServerError
	switch ae.Code {
	case api.CodeBadRequest, api.CodeVersionMismatch:
		status = http.StatusBadRequest
	case api.CodeCanceled:
		// Non-standard but conventional "client closed request"; the
		// client is usually gone and never sees it.
		status = 499
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ae)
}

// wireError normalizes any backend error into its wire form.
func wireError(ctx context.Context, err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return api.Errorf(api.CodeCanceled, "%v", err)
	}
	return api.Errorf(api.CodeInternal, "%v", err)
}

// writeResult writes a successful JSON response, or the error mapped to
// its wire form.
func writeResult(w http.ResponseWriter, r *http.Request, v any, err error) {
	if err != nil {
		writeError(w, wireError(r.Context(), err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// health reports readiness, not just liveness: a server whose cache
// backend has stopped accepting writes (disk full, volume unmounted,
// peer down) would serve every sweep degraded — cold and non-incremental
// — so it answers 503 and lets the orchestrator rotate it out instead of
// answering an unconditional 200. What "writable" means is the backend's
// call: the disk backend probes a temp-file create, an HTTP backend
// probes its peer's own /healthz, a tiered stack requires every tier.
func (s *server) health(w http.ResponseWriter, r *http.Request) {
	if s.cache != nil {
		if err := s.cache.Ready(); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"status": "unhealthy", "api_version": api.Version,
				"error": err.Error(),
			})
			return
		}
	}
	writeResult(w, r, map[string]any{"status": "ok", "api_version": api.Version}, nil)
}

// cacheEntryKey validates a cache route's path parts. Keys are content
// addresses (lowercase hex SHA-256), so anything else — and any tier but
// the two known ones — is a malformed request, which also rules out path
// escapes before a key ever reaches a backend.
func cacheEntryKey(w http.ResponseWriter, r *http.Request) (tier, key string, ok bool) {
	tier, key = r.PathValue("tier"), r.PathValue("key")
	if tier != sweep.TierTestgen && tier != sweep.TierCheck {
		writeError(w, api.Errorf(api.CodeBadRequest, "unknown cache tier %q (known: %s, %s)",
			tier, sweep.TierTestgen, sweep.TierCheck))
		return "", "", false
	}
	if len(key) != 64 || strings.IndexFunc(key, func(c rune) bool {
		return !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f')
	}) != -1 {
		writeError(w, api.Errorf(api.CodeBadRequest, "malformed cache key %q", key))
		return "", "", false
	}
	return tier, key, true
}

// cacheGet serves one cache entry in its canonical on-disk encoding; a
// miss (including any decode defect below) is a 404. Together with
// cachePut this is what sweep.NewHTTPBackend speaks, letting a fleet of
// servers share this instance's cache.
func (s *server) cacheGet(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "this server hosts no cache (start it with -cache)"))
		return
	}
	tier, key, ok := cacheEntryKey(w, r)
	if !ok {
		return
	}
	var (
		data []byte
		err  error
		hit  bool
	)
	switch tier {
	case sweep.TierTestgen:
		if tests, found := s.cache.GetTests(key); found {
			data, err = sweep.EncodeTestsEntry(key, tests)
			hit = true
		}
	case sweep.TierCheck:
		if cell, found := s.cache.GetCell(key); found {
			data, err = sweep.EncodeCellEntry(key, *cell)
			hit = true
		}
	}
	if err != nil {
		writeError(w, api.Errorf(api.CodeInternal, "encode cache entry: %v", err))
		return
	}
	if !hit {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Errorf(api.CodeBadRequest, "no %s entry for %s", tier, key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// cachePut stores one cache entry. The body must be the canonical entry
// encoding for this key — the same self-validating format the disk
// backend stores — so a corrupt, stale-version or mis-keyed body is a
// 400, never a stored entry.
func (s *server) cachePut(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "this server hosts no cache (start it with -cache)"))
		return
	}
	tier, key, ok := cacheEntryKey(w, r)
	if !ok {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "read cache entry: %v", err))
		return
	}
	switch tier {
	case sweep.TierTestgen:
		tests, valid := sweep.DecodeTestsEntry(key, data)
		if !valid {
			writeError(w, api.Errorf(api.CodeBadRequest, "body is not a valid %s entry for %s", tier, key))
			return
		}
		err = s.cache.PutTests(key, tests)
	case sweep.TierCheck:
		cell, valid := sweep.DecodeCellEntry(key, data)
		if !valid {
			writeError(w, api.Errorf(api.CodeBadRequest, "body is not a valid %s entry for %s", tier, key))
			return
		}
		err = s.cache.PutCell(key, *cell)
	}
	if err != nil {
		writeError(w, api.Errorf(api.CodeInternal, "store cache entry: %v", err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// fleetClaim serves the coordinator side of fleet lease claims. Hub
// errors here are usage errors (a claim naming no worker or no ops), so
// they map to bad requests rather than server faults.
func (s *server) fleetClaim(w http.ResponseWriter, r *http.Request) {
	var req api.FleetClaimRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	resp, err := s.hub.Claim(req)
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	writeResult(w, r, resp, nil)
}

// fleetResult accepts completed pairs from fleet workers and writes
// their cells through the shared cache. Posting into an unknown session
// (coordinator restarted, or never claimed from) is a bad request: the
// worker's next claim rebuilds the session and the pairs re-run.
func (s *server) fleetResult(w http.ResponseWriter, r *http.Request) {
	var req api.FleetResultRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	resp, err := s.hub.Report(req)
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	writeResult(w, r, resp, nil)
}

// fleetStatus reports one fleet sweep's progress; ?sweep= carries the
// JSON FleetSweepSpec and ?results=1 asks for the merged PairResults
// once the sweep is done.
func (s *server) fleetStatus(w http.ResponseWriter, r *http.Request) {
	sw, err := sweep.DecodeSweepParam(r.URL.Query().Get("sweep"))
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	resp, err := s.hub.Status(sw, r.URL.Query().Get("results") == "1")
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	writeResult(w, r, resp, nil)
}

func (s *server) specs(w http.ResponseWriter, r *http.Request) {
	specs, err := s.backend.Specs(r.Context())
	if err != nil {
		writeError(w, wireError(r.Context(), err))
		return
	}
	writeResult(w, r, api.SpecsResponse{Version: api.Version, Specs: specs}, nil)
}

func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	out, err := s.backend.Analyze(r.Context(), req.OpA, req.OpB, optionsFromWire(req.Options)...)
	writeResult(w, r, out, err)
}

func (s *server) testgen(w http.ResponseWriter, r *http.Request) {
	var req api.TestgenRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	out, err := s.backend.GenerateTests(r.Context(), req.OpA, req.OpB, optionsFromWire(req.Options)...)
	writeResult(w, r, out, err)
}

func (s *server) check(w http.ResponseWriter, r *http.Request) {
	var req api.CheckRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	out, err := s.backend.Check(r.Context(), req.Kernel, req.Tests, optionsFromWire(req.Options)...)
	writeResult(w, r, out, err)
}

// sweep streams a sweep as NDJSON frames, flushing after every frame so a
// watching client sees pairs as they finish. The terminal frame is always
// a "result" or an "error"; a connection that drops beforehand reads as a
// truncated stream client-side.
func (s *server) sweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	opts := optionsFromWire(req.Options)
	if s.cache != nil {
		opts = append(opts, WithCacheBackend(s.cache))
	}
	if req.Options.Workers == 0 && s.workers > 0 {
		opts = append(opts, WithWorkers(s.workers))
	}
	if s.fleetURL != "" {
		opts = append(opts, WithFleet(s.fleetURL))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	emit := func(fr api.Frame) bool {
		if err := enc.Encode(fr); err != nil {
			return false // client gone; the request context will cancel
		}
		rc.Flush()
		return true
	}
	for upd, err := range s.backend.SweepStream(r.Context(), opts...) {
		if err != nil {
			emit(api.Frame{Type: api.FrameError, Error: wireError(r.Context(), err)})
			return
		}
		var fr api.Frame
		if upd.Result != nil {
			fr = api.Frame{Type: api.FrameResult, Result: api.ResultFromSweep(upd.Result, s.cache != nil)}
		} else {
			fr = api.Frame{Type: api.FrameUpdate, Pair: upd.Pair}
			if upd.Progress != nil {
				fr.Progress = api.ProgressFromEvent(*upd.Progress)
			}
		}
		if !emit(fr) {
			return
		}
	}
}
