package commuter

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/sweep"
)

// ServerOption configures NewServerHandler.
type ServerOption func(*serverOptions)

type serverOptions struct {
	cacheDir string
	workers  int
}

// ServeWithCache hosts the two-tier sweep cache rooted at dir behind
// every sweep the handler serves: one shared handle, so concurrent
// clients' sweeps serve and warm the same entries, and per-request
// results report per-request hit/miss statistics.
func ServeWithCache(dir string) ServerOption {
	return func(o *serverOptions) { o.cacheDir = dir }
}

// ServeWithWorkers sets the worker-pool size used for sweep requests that
// do not specify one (the default is one worker per server CPU).
func ServeWithWorkers(n int) ServerOption {
	return func(o *serverOptions) { o.workers = n }
}

// NewServerHandler returns the HTTP side of the wire contract: an
// http.Handler exposing backend under the versioned JSON API that Dial
// speaks (analyze/testgen/check as request-response, sweeps as NDJSON
// streams, plus spec discovery and a health endpoint).
//
// The backend is any Client — normally Local(), but a Dial client works
// too, making the handler a transparent proxy. Request contexts are
// passed straight through, so a client hangup cancels the backend work it
// started.
func NewServerHandler(backend Client, opts ...ServerOption) (http.Handler, error) {
	var so serverOptions
	for _, f := range opts {
		f(&so)
	}
	s := &server{backend: backend, workers: so.workers}
	if so.cacheDir != "" {
		var err error
		if s.cache, err = sweep.OpenCache(so.cacheDir); err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathHealth, s.health)
	mux.HandleFunc("GET "+api.PathSpecs, s.specs)
	mux.HandleFunc("POST "+api.PathAnalyze, s.analyze)
	mux.HandleFunc("POST "+api.PathTestgen, s.testgen)
	mux.HandleFunc("POST "+api.PathCheck, s.check)
	mux.HandleFunc("POST "+api.PathSweep, s.sweep)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, fmt.Sprint(api.Version))
		mux.ServeHTTP(w, r)
	}), nil
}

type server struct {
	backend Client
	cache   *sweep.Cache
	workers int
}

// maxRequestBytes bounds request bodies (check requests carry whole test
// sets; 64 MiB is two orders of magnitude above the full 18-op corpus).
const maxRequestBytes = 64 << 20

// decodeRequest parses the body and enforces the wire version; version is
// the request's own stamp. It writes the error response itself when it
// returns false.
func decodeRequest(w http.ResponseWriter, r *http.Request, req any, version func() int) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "malformed request: %v", err))
		return false
	}
	if err := api.CheckVersion(version()); err != nil {
		writeError(w, err)
		return false
	}
	return true
}

// writeError maps a wire error to its status code and writes it.
func writeError(w http.ResponseWriter, ae *api.Error) {
	status := http.StatusInternalServerError
	switch ae.Code {
	case api.CodeBadRequest, api.CodeVersionMismatch:
		status = http.StatusBadRequest
	case api.CodeCanceled:
		// Non-standard but conventional "client closed request"; the
		// client is usually gone and never sees it.
		status = 499
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ae)
}

// wireError normalizes any backend error into its wire form.
func wireError(ctx context.Context, err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return api.Errorf(api.CodeCanceled, "%v", err)
	}
	return api.Errorf(api.CodeInternal, "%v", err)
}

// writeResult writes a successful JSON response, or the error mapped to
// its wire form.
func writeResult(w http.ResponseWriter, r *http.Request, v any, err error) {
	if err != nil {
		writeError(w, wireError(r.Context(), err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeResult(w, r, map[string]any{"status": "ok", "api_version": api.Version}, nil)
}

func (s *server) specs(w http.ResponseWriter, r *http.Request) {
	specs, err := s.backend.Specs(r.Context())
	if err != nil {
		writeError(w, wireError(r.Context(), err))
		return
	}
	writeResult(w, r, api.SpecsResponse{Version: api.Version, Specs: specs}, nil)
}

func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	out, err := s.backend.Analyze(r.Context(), req.OpA, req.OpB, optionsFromWire(req.Options)...)
	writeResult(w, r, out, err)
}

func (s *server) testgen(w http.ResponseWriter, r *http.Request) {
	var req api.TestgenRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	out, err := s.backend.GenerateTests(r.Context(), req.OpA, req.OpB, optionsFromWire(req.Options)...)
	writeResult(w, r, out, err)
}

func (s *server) check(w http.ResponseWriter, r *http.Request) {
	var req api.CheckRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	out, err := s.backend.Check(r.Context(), req.Kernel, req.Tests, optionsFromWire(req.Options)...)
	writeResult(w, r, out, err)
}

// sweep streams a sweep as NDJSON frames, flushing after every frame so a
// watching client sees pairs as they finish. The terminal frame is always
// a "result" or an "error"; a connection that drops beforehand reads as a
// truncated stream client-side.
func (s *server) sweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if !decodeRequest(w, r, &req, func() int { return req.Version }) {
		return
	}
	opts := optionsFromWire(req.Options)
	if s.cache != nil {
		opts = append(opts, withCacheHandle(s.cache))
	}
	if req.Options.Workers == 0 && s.workers > 0 {
		opts = append(opts, WithWorkers(s.workers))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	emit := func(fr api.Frame) bool {
		if err := enc.Encode(fr); err != nil {
			return false // client gone; the request context will cancel
		}
		rc.Flush()
		return true
	}
	for upd, err := range s.backend.SweepStream(r.Context(), opts...) {
		if err != nil {
			emit(api.Frame{Type: api.FrameError, Error: wireError(r.Context(), err)})
			return
		}
		var fr api.Frame
		if upd.Result != nil {
			fr = api.Frame{Type: api.FrameResult, Result: api.ResultFromSweep(upd.Result, s.cache != nil)}
		} else {
			fr = api.Frame{Type: api.FrameUpdate, Pair: upd.Pair}
			if upd.Progress != nil {
				fr.Progress = api.ProgressFromEvent(*upd.Progress)
			}
		}
		if !emit(fr) {
			return
		}
	}
}
