package commuter_test

import (
	"context"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/commuter"
)

// scrape fetches /metrics and returns the raw exposition plus a
// series -> value map ("name{labels}" keys).
func scrape(t *testing.T, base string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			vals[line[:i]] = v
		}
	}
	return string(body), vals
}

// TestMetricsExpositionNames pins the metric-name contract: the names and
// types documented in the README's Observability table. Renaming one is a
// dashboard-breaking change and must show up here.
func TestMetricsExpositionNames(t *testing.T) {
	_, srv := newLoopback(t)
	body, _ := scrape(t, srv.URL)
	for _, want := range []string{
		"# TYPE commuter_http_requests_total counter",
		"# TYPE commuter_http_request_seconds histogram",
		"# TYPE commuter_http_requests_inflight gauge",
		"# TYPE commuter_sweeps_inflight gauge",
		"# TYPE commuter_sweep_pairs_total counter",
		"# TYPE commuter_sweep_phase_seconds histogram",
		"# TYPE commuter_cache_testgen_hits_total counter",
		"# TYPE commuter_cache_testgen_misses_total counter",
		"# TYPE commuter_cache_check_hits_total counter",
		"# TYPE commuter_cache_check_misses_total counter",
		"# TYPE commuter_cache_write_errors_total counter",
		"# TYPE commuter_solver_sat_calls_total counter",
		"# TYPE commuter_solver_budget_exhaustions_total counter",
		"# TYPE commuter_sym_intern_hits_total counter",
		"# TYPE commuter_sym_intern_misses_total counter",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

// TestMetricsMoveWithTraffic pins the counters to the traffic that is
// supposed to move them: a cold sweep bumps misses and computed pairs, an
// identical warm sweep bumps the two cache tiers' hits and cached pairs.
// Everything is asserted as a delta — the registry is process-wide and
// other tests share it.
func TestMetricsMoveWithTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	cli, srv := newLoopback(t, commuter.ServeWithCache(t.TempDir()))
	ctx := context.Background()
	opts := []commuter.Option{commuter.WithSpec("queue"), commuter.WithOpSet("all")}

	_, before := scrape(t, srv.URL)
	cold, err := cli.Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	_, mid := scrape(t, srv.URL)
	if _, err := cli.Sweep(ctx, opts...); err != nil {
		t.Fatal(err)
	}
	_, after := scrape(t, srv.URL)

	pairs := float64(len(cold.Pairs))
	delta := func(m1, m2 map[string]float64, series string) float64 { return m2[series] - m1[series] }
	for _, tc := range []struct {
		phase    string
		from, to map[string]float64
		series   string
		want     float64
	}{
		{"cold", before, mid, "commuter_cache_testgen_misses_total", pairs},
		{"cold", before, mid, "commuter_cache_check_misses_total", pairs},
		{"cold", before, mid, `commuter_sweep_pairs_total{outcome="computed"}`, pairs},
		{"warm", mid, after, "commuter_cache_testgen_hits_total", pairs},
		{"warm", mid, after, "commuter_cache_check_hits_total", pairs},
		{"warm", mid, after, `commuter_sweep_pairs_total{outcome="cached"}`, pairs},
	} {
		if got := delta(tc.from, tc.to, tc.series); got != tc.want {
			t.Errorf("%s sweep moved %s by %g, want %g", tc.phase, tc.series, got, tc.want)
		}
	}
	// The cold sweep did symbolic work; the warm one did none.
	if d := delta(before, mid, "commuter_solver_sat_calls_total"); d <= 0 {
		t.Errorf("cold sweep moved sat_calls by %g, want > 0", d)
	}
	if d := delta(mid, after, "commuter_solver_sat_calls_total"); d != 0 {
		t.Errorf("warm sweep moved sat_calls by %g, want 0", d)
	}
	// Both sweeps finished: nothing in flight at scrape time.
	if v := after["commuter_sweeps_inflight"]; v != 0 {
		t.Errorf("commuter_sweeps_inflight = %g after sweeps completed", v)
	}
	// The HTTP layer counted the sweep requests on their route label.
	if d := delta(before, after, `commuter_http_requests_total{route="POST /v1/sweep",code="200"}`); d != 2 {
		t.Errorf("sweep route counted %g requests, want 2", d)
	}
}

// TestRequestIDHeader pins the log-correlation handle clients get back.
func TestRequestIDHeader(t *testing.T) {
	_, srv := newLoopback(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); len(id) != 16 {
		t.Errorf("X-Request-Id = %q, want a 16-hex-digit id", id)
	}
}

// TestHealthzUnwritableCache pins the readiness semantics: healthz flips
// to 503 when the cache directory stops being writable, instead of
// reporting a server that would serve every sweep degraded as healthy.
func TestHealthzUnwritableCache(t *testing.T) {
	dir := t.TempDir() + "/cache"
	_, srv := newLoopback(t, commuter.ServeWithCache(dir))

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with a writable cache: %s", resp.Status)
	}

	// Removing the directory outright fails CreateTemp for any uid —
	// chmod-based unwritability would not stop root, and tests run as
	// root in some CI containers.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with the cache dir gone: %s, want 503\nbody: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), "cache not writable") {
		t.Errorf("503 body does not say why: %s", body)
	}
}

// TestPprofOptIn pins that the profiler is absent by default and mounted
// by ServeWithPprof.
func TestPprofOptIn(t *testing.T) {
	status := func(opts ...commuter.ServerOption) int {
		t.Helper()
		_, srv := newLoopback(t, opts...)
		resp, err := http.Get(srv.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(); got != http.StatusNotFound {
		t.Errorf("pprof without opt-in: %d, want 404", got)
	}
	if got := status(commuter.ServeWithPprof()); got != http.StatusOK {
		t.Errorf("pprof with ServeWithPprof: %d, want 200", got)
	}
}
